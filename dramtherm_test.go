package dramtherm

import "testing"

// TestFacade exercises the public API end-to-end at a tiny scale: the
// exact code path the README quickstart shows.
func TestFacade(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Replicas = 1
	cfg.InstrScale = 0.01
	sys := NewSystem(cfg)

	mix, err := MixByName("W1")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix.Apps) != 4 {
		t.Fatalf("W1 = %v", mix.Apps)
	}
	p, err := sys.NewPolicy("DTM-ACG")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(RunSpec{Mix: mix, Policy: p, Cooling: CoolingAOHS15, Model: Isolated})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds <= 0 || res.Completed != 4 {
		t.Fatalf("facade run broken: %+v", res)
	}
}

func TestFacadeCatalog(t *testing.T) {
	if len(Mixes()) != 10 {
		t.Fatalf("mixes = %d", len(Mixes()))
	}
	if len(PolicyNames()) != 9 {
		t.Fatalf("policies = %d", len(PolicyNames()))
	}
	if CoolingAOHS15.Name() != "AOHS_1.5" || CoolingFDHS10.Name() != "FDHS_1.0" {
		t.Fatal("cooling exports wrong")
	}
	if Isolated.String() != "isolated" || Integrated.String() != "integrated" {
		t.Fatal("model kinds wrong")
	}
	if _, err := MixByName("W0"); err == nil {
		t.Fatal("unknown mix accepted")
	}
}
