package dramtherm

import (
	"context"
	"testing"
)

// TestFacade exercises the public API end-to-end at a tiny scale: the
// exact code path the README quickstart shows.
func TestFacade(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Replicas = 1
	cfg.InstrScale = 0.01
	sys := NewSystem(cfg)

	mix, err := MixByName("W1")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix.Apps) != 4 {
		t.Fatalf("W1 = %v", mix.Apps)
	}
	p, err := sys.NewPolicy("DTM-ACG")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(RunSpec{Mix: mix, Policy: p, Cooling: CoolingAOHS15, Model: Isolated})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds <= 0 || res.Completed != 4 {
		t.Fatalf("facade run broken: %+v", res)
	}
}

// TestFacadeEngine sweeps a tiny grid through the public engine with
// durable state, then rebuilds the engine from the same directory and
// checks the cache is warm — the whole quickstart workflow, without a
// single internal import in user code.
func TestFacadeEngine(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Replicas = 1
	cfg.InstrScale = 0.01
	dir := t.TempDir()

	eng, err := NewEngine(cfg, WithWorkers(2), WithStateDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	specs := Grid{Mixes: []string{"W1"}, Policies: []string{"No-limit", "DTM-TS"}}.Expand()
	res, err := eng.Sweep(context.Background(), specs, SweepOptions{Normalize: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 2 || res.Results[0].Seconds <= 0 || res.Norms[1] <= 0 {
		t.Fatalf("sweep results broken: %+v", res)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	warm, err := NewEngine(cfg, WithWorkers(2), WithStateDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	if got := warm.Stats().Entries; got != 2 {
		t.Fatalf("warm engine replayed %d cached runs, want 2", got)
	}
	if _, err := warm.Sweep(context.Background(), specs, SweepOptions{}); err != nil {
		t.Fatal(err)
	}
	if b := warm.Stats().Builds; b != 0 {
		t.Fatalf("warm sweep rebuilt %d specs, want 0", b)
	}
}

func TestFacadeCatalog(t *testing.T) {
	if len(Mixes()) != 10 {
		t.Fatalf("mixes = %d", len(Mixes()))
	}
	if len(PolicyNames()) != 9 {
		t.Fatalf("policies = %d", len(PolicyNames()))
	}
	if CoolingAOHS15.Name() != "AOHS_1.5" || CoolingFDHS10.Name() != "FDHS_1.0" {
		t.Fatal("cooling exports wrong")
	}
	if Isolated.String() != "isolated" || Integrated.String() != "integrated" {
		t.Fatal("model kinds wrong")
	}
	if _, err := MixByName("W0"); err == nil {
		t.Fatal("unknown mix accepted")
	}
}
