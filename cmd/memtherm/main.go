// Command memtherm regenerates the paper's tables and figures.
//
// Usage:
//
//	memtherm -list                 # show available experiments
//	memtherm -run fig4.3           # run one experiment
//	memtherm -run all              # run everything (minutes)
//	memtherm -run fig5.6 -quick    # reduced-scale run (seconds to ~1 min)
//	memtherm -run fig4.4 -csv      # emit CSV instead of rendered tables
//	memtherm -run all -parallel 8  # run experiments concurrently; shared
//	                               # (mix, policy) runs are deduplicated by
//	                               # the sweep engine, not repeated
//	memtherm -run all -state s.gob # durable cache: results persist to the
//	                               # s.gob.d segment log as they complete
//	                               # (a legacy s.gob blob migrates once)
//	memtherm -search halving -quick # adaptive search for the best DTM
//	                               # policy: cheap fidelity rungs prune
//	                               # candidates before full simulation
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"dramtherm"
	"dramtherm/internal/exp"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		run      = flag.String("run", "", "experiment ID(s), comma separated, or \"all\"")
		quick    = flag.Bool("quick", false, "reduced-scale mode (smaller batches, fewer mixes)")
		csv      = flag.Bool("csv", false, "emit tables as CSV")
		parallel = flag.Int("parallel", 1, "experiments to run concurrently; also sizes the simulation worker pool (0 = GOMAXPROCS)")
		state    = flag.String("state", "", "durable state: results append to the <path>.d segment log as they complete; a legacy gob blob at <path> migrates once")
		search   = flag.String("search", "", "adaptive search instead of an experiment: \"halving\" or \"bounds\" finds the best DTM policy per Chapter 4 mix, pruning on cheap fidelity rungs")
	)
	flag.Parse()

	if *list {
		for _, d := range exp.All() {
			fmt.Printf("%-10s %s\n", d.ID, d.Title)
		}
		return
	}
	if *run == "" && *search == "" {
		flag.Usage()
		os.Exit(2)
	}

	// The facade owns the engine (and its durable state, when -state is
	// set); the experiment runner drives it. Results append to the
	// segment log as they complete, so even an aborted run keeps its
	// finished simulations.
	eng, err := dramtherm.NewEngine(exp.RunnerConfig(*quick),
		dramtherm.WithWorkers(*parallel), dramtherm.WithState(*state))
	if err != nil {
		log.Fatalf("engine: %v", err)
	}
	defer eng.Close()

	if *search != "" {
		if err := runSearch(eng, *search, *quick, *csv); err != nil {
			fmt.Fprintln(os.Stderr, err)
			eng.Close() //nolint:errcheck // os.Exit skips the deferred close
			os.Exit(1)
		}
		return
	}
	runner := exp.NewRunnerFor(eng.Engine, *quick)

	ids := strings.Split(*run, ",")
	if *run == "all" {
		ids = exp.IDs()
	}
	for _, id := range ids {
		if _, err := exp.Lookup(id); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	// Run up to -parallel experiments concurrently. Their shared level-2
	// runs (e.g. fig4.3/4.4/4.9/4.10 reuse the same simulations)
	// collapse in the sweep engine's singleflight cache, so concurrency
	// never duplicates work. Output streams in request order as each
	// experiment (and all before it) completes; the first failure in
	// that order aborts the run, as in serial mode.
	width := *parallel
	if width < 1 {
		width = len(ids)
	}
	type outcome struct {
		text string
		err  error
	}
	outs := make([]outcome, len(ids))
	ready := make([]chan struct{}, len(ids))
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	sem := make(chan struct{}, width)
	for i, id := range ids {
		go func(i int, id string) {
			defer close(ready[i])
			sem <- struct{}{}
			defer func() { <-sem }()
			d, _ := exp.Lookup(id)
			start := time.Now()
			res, err := d.Run(runner)
			if err != nil {
				outs[i] = outcome{err: fmt.Errorf("%s: %w", id, err)}
				return
			}
			var b strings.Builder
			fmt.Fprintf(&b, "==== %s — %s (%.1fs)\n\n", d.ID, d.Title, time.Since(start).Seconds())
			if *csv {
				for _, t := range res.Tables {
					b.WriteString(t.CSV())
				}
				for _, f := range res.Figures {
					b.WriteString(f.DataTable().CSV())
				}
			} else {
				b.WriteString(res.String())
			}
			outs[i] = outcome{text: b.String()}
		}(i, id)
	}

	for i := range ids {
		<-ready[i]
		if outs[i].err != nil {
			fmt.Fprintln(os.Stderr, outs[i].err)
			eng.Close() //nolint:errcheck // os.Exit skips the deferred close
			os.Exit(1)
		}
		fmt.Print(outs[i].text)
	}
}

// runSearch finds the best Chapter 4 DTM policy adaptively: every
// (mix, policy) candidate is measured at cheap fidelity rungs first,
// and only the survivors pay for full-length simulation.
func runSearch(eng *dramtherm.Engine, strategy string, quick, csv bool) error {
	mixes := []string{"W1", "W2", "W3", "W4", "W5", "W6", "W7", "W8"}
	if quick {
		mixes = mixes[:2]
	}
	candidates := dramtherm.Grid{
		Mixes:    mixes,
		Policies: []string{"DTM-TS", "DTM-BW", "DTM-ACG", "DTM-CDVFS"},
	}.Expand()

	var strat dramtherm.Strategy
	switch strategy {
	case "halving":
		strat = &dramtherm.Halving{Candidates: candidates}
	case "bounds":
		strat = &dramtherm.BoundPrune{Candidates: candidates}
	default:
		return fmt.Errorf("unknown -search strategy %q (want halving or bounds)", strategy)
	}

	start := time.Now()
	res, err := eng.Search(context.Background(), strat, dramtherm.SearchOptions{Normalize: true})
	if err != nil {
		return err
	}
	tab := res.Table(fmt.Sprintf("adaptive %s search over %d candidates, %.1fs wall",
		strategy, len(candidates), time.Since(start).Seconds()))
	if csv {
		fmt.Print(tab.CSV())
	} else {
		fmt.Print(tab.String())
	}
	fmt.Printf("best %s (normalized runtime %.3f); %d of %d candidates reached full fidelity\n",
		res.Best, res.BestObjective, res.FullFidelityRuns, len(candidates))
	return nil
}
