// Command memtherm regenerates the paper's tables and figures.
//
// Usage:
//
//	memtherm -list                 # show available experiments
//	memtherm -run fig4.3           # run one experiment
//	memtherm -run all              # run everything (minutes)
//	memtherm -run fig5.6 -quick    # reduced-scale run (seconds to ~1 min)
//	memtherm -run fig4.4 -csv      # emit CSV instead of rendered tables
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dramtherm/internal/exp"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list experiment IDs and exit")
		run   = flag.String("run", "", "experiment ID(s), comma separated, or \"all\"")
		quick = flag.Bool("quick", false, "reduced-scale mode (smaller batches, fewer mixes)")
		csv   = flag.Bool("csv", false, "emit tables as CSV")
	)
	flag.Parse()

	if *list {
		for _, d := range exp.All() {
			fmt.Printf("%-10s %s\n", d.ID, d.Title)
		}
		return
	}
	if *run == "" {
		flag.Usage()
		os.Exit(2)
	}

	runner := exp.NewRunner(*quick)
	ids := strings.Split(*run, ",")
	if *run == "all" {
		ids = exp.IDs()
	}
	for _, id := range ids {
		d, err := exp.Lookup(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		start := time.Now()
		res, err := d.Run(runner)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("==== %s — %s (%.1fs)\n\n", d.ID, d.Title, time.Since(start).Seconds())
		if *csv {
			for _, t := range res.Tables {
				fmt.Print(t.CSV())
			}
			for _, f := range res.Figures {
				fmt.Print(f.DataTable().CSV())
			}
			continue
		}
		fmt.Print(res.String())
	}
}
