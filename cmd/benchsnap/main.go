// Command benchsnap pins the simulator hot-loop perf trajectory. It
// runs the canonical per-timestep benchmarks (internal/simtest/
// benchcases — the same bodies `go test -bench` registers) in-process
// via testing.Benchmark and either:
//
//   - writes a schema-stable snapshot (-out BENCH_8.json), optionally
//     embedding a previously captured baseline (-baseline old.json) and
//     reporting per-benchmark and median speedups against it; or
//   - gates a tree against the newest checked-in BENCH_*.json
//     (-check): fails when the median ns/op of any pinned benchmark
//     regresses more than -max-regress (default 10%) after machine
//     normalization, or when allocs/op grew at all.
//
// Machine normalization: absolute ns/op is not comparable across
// machines, so every snapshot records a calibration number — a fixed
// dependent-chain float workload — and -check rescales the snapshot's
// medians by calibration(now)/calibration(snapshot) before comparing.
// allocs/op needs no normalization and is compared exactly. See
// docs/PERFORMANCE.md.
//
// Usage:
//
//	benchsnap -out BENCH_8.json -pr 8 -baseline /tmp/pre.json
//	benchsnap -check [-dir .] [-max-regress 0.10] [-out candidate.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"testing"

	"dramtherm/internal/simtest/benchcases"
)

// Measurement is one pinned benchmark's recorded numbers.
type Measurement struct {
	NsPerOp       []float64 `json:"ns_per_op"`
	MedianNsPerOp float64   `json:"median_ns_per_op"`
	BytesPerOp    int64     `json:"bytes_per_op"`
	AllocsPerOp   int64     `json:"allocs_per_op"`
}

// Baseline is an embedded pre-change capture.
type Baseline struct {
	Note          string                 `json:"note,omitempty"`
	CalibrationNs float64                `json:"calibration_ns_per_op,omitempty"`
	Benchmarks    map[string]Measurement `json:"benchmarks"`
}

// Snapshot is the schema-stable BENCH_*.json payload.
type Snapshot struct {
	Schema        int                    `json:"schema"`
	PR            int                    `json:"pr,omitempty"`
	Description   string                 `json:"description"`
	GOOS          string                 `json:"goos"`
	GOARCH        string                 `json:"goarch"`
	GOMAXPROCS    int                    `json:"gomaxprocs"`
	Count         int                    `json:"count"`
	CalibrationNs float64                `json:"calibration_ns_per_op"`
	Benchmarks    map[string]Measurement `json:"benchmarks"`
	Baseline      *Baseline              `json:"baseline,omitempty"`
	Speedups      map[string]float64     `json:"speedups,omitempty"`
	MedianSpeedup float64                `json:"median_speedup,omitempty"`
	Command       string                 `json:"command"`
}

const description = "Pinned per-timestep simulator hot-loop benchmarks " +
	"(internal/simtest/benchcases): thermal RC step, level-1 machine tick, " +
	"memory-controller tick, level-2 MEMSpot window. Medians over `count` " +
	"in-process testing.Benchmark runs."

var calibSink float64

// calibrate measures a fixed dependent-chain float workload, giving a
// machine-speed reference that makes snapshot medians comparable across
// hosts (the workload is 64 chained RC steps, the same arithmetic shape
// as the thermal hot loop).
func calibrate() float64 {
	r := testing.Benchmark(func(b *testing.B) {
		t, s := 50.0, 110.0
		for i := 0; i < b.N; i++ {
			for k := 0; k < 64; k++ {
				t = t + (s-t)*0.015625
			}
			s = 220 - s // keep the chain from converging to a constant
		}
		calibSink = t
	})
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// run executes one pinned case count times and aggregates.
func run(name string, count int) (Measurement, error) {
	fn, ok := benchcases.ByName(name)
	if !ok {
		return Measurement{}, fmt.Errorf("unknown benchmark %q", name)
	}
	var m Measurement
	for i := 0; i < count; i++ {
		runtime.GC()
		r := testing.Benchmark(fn)
		if r.N == 0 {
			return Measurement{}, fmt.Errorf("%s: benchmark did not run", name)
		}
		m.NsPerOp = append(m.NsPerOp, float64(r.T.Nanoseconds())/float64(r.N))
		m.BytesPerOp = r.AllocedBytesPerOp()
		m.AllocsPerOp = r.AllocsPerOp()
	}
	m.MedianNsPerOp = median(m.NsPerOp)
	return m, nil
}

func runAll(count int) (map[string]Measurement, error) {
	out := make(map[string]Measurement, len(benchcases.Names()))
	for _, name := range benchcases.Names() {
		fmt.Fprintf(os.Stderr, "benchsnap: running %s ×%d...\n", name, count)
		m, err := run(name, count)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "benchsnap:   %s median %.0f ns/op, %d B/op, %d allocs/op\n",
			name, m.MedianNsPerOp, m.BytesPerOp, m.AllocsPerOp)
		out[name] = m
	}
	return out, nil
}

// newestSnapshot finds the BENCH_<n>.json with the largest n in dir.
func newestSnapshot(dir string) (string, error) {
	pat := regexp.MustCompile(`^BENCH_(\d+)\.json$`)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	best, bestN := "", -1
	for _, e := range entries {
		m := pat.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, _ := strconv.Atoi(m[1])
		if n > bestN {
			best, bestN = e.Name(), n
		}
	}
	if best == "" {
		return "", fmt.Errorf("no BENCH_*.json snapshot in %s", dir)
	}
	return filepath.Join(dir, best), nil
}

func loadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(s.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: snapshot has no benchmarks", path)
	}
	return &s, nil
}

func writeSnapshot(path string, s *Snapshot) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// check gates the current tree against snap.
func check(snap *Snapshot, now map[string]Measurement, calibNow, maxRegress float64) error {
	scale := 1.0
	if snap.CalibrationNs > 0 && calibNow > 0 {
		scale = calibNow / snap.CalibrationNs
		fmt.Fprintf(os.Stderr, "benchsnap: machine scale %.3f (calibration %.1f → %.1f ns)\n",
			scale, snap.CalibrationNs, calibNow)
	}
	var failures []string
	for _, name := range benchcases.Names() {
		old, ok := snap.Benchmarks[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchsnap: %s not in snapshot, skipping\n", name)
			continue
		}
		cur := now[name]
		allowed := old.MedianNsPerOp * scale * (1 + maxRegress)
		verdict := "ok"
		if cur.MedianNsPerOp > allowed {
			verdict = "REGRESSED"
			failures = append(failures, fmt.Sprintf(
				"%s: median %.0f ns/op exceeds %.0f (snapshot %.0f × scale %.3f × %.0f%% headroom)",
				name, cur.MedianNsPerOp, allowed, old.MedianNsPerOp, scale, 100*(1+maxRegress)))
		}
		if cur.AllocsPerOp > old.AllocsPerOp {
			verdict = "REGRESSED"
			failures = append(failures, fmt.Sprintf(
				"%s: allocs/op grew %d → %d (machine-independent)",
				name, old.AllocsPerOp, cur.AllocsPerOp))
		}
		fmt.Fprintf(os.Stderr, "benchsnap: %-15s snapshot %8.0f  now %8.0f ns/op  allocs %d → %d  [%s]\n",
			name, old.MedianNsPerOp, cur.MedianNsPerOp, old.AllocsPerOp, cur.AllocsPerOp, verdict)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "benchsnap: FAIL:", f)
		}
		return fmt.Errorf("%d pinned benchmark(s) regressed", len(failures))
	}
	return nil
}

func main() {
	var (
		out        = flag.String("out", "", "write a snapshot to this file")
		pr         = flag.Int("pr", 0, "PR number recorded in the snapshot")
		count      = flag.Int("count", 5, "runs per benchmark (median is pinned)")
		baseline   = flag.String("baseline", "", "embed this earlier capture as the snapshot's baseline")
		note       = flag.String("note", "", "appended to the snapshot description (what this PR changed)")
		doCheck    = flag.Bool("check", false, "gate against the newest checked-in BENCH_*.json")
		dir        = flag.String("dir", ".", "directory holding BENCH_*.json snapshots (-check)")
		maxRegress = flag.Float64("max-regress", 0.10, "allowed median regression fraction (-check)")
	)
	flag.Parse()
	if !*doCheck && *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	fmt.Fprintln(os.Stderr, "benchsnap: calibrating...")
	calib := calibrate()
	results, err := runAll(*count)
	fail(err)

	if *doCheck {
		path, err := newestSnapshot(*dir)
		fail(err)
		fmt.Fprintf(os.Stderr, "benchsnap: checking against %s\n", path)
		snap, err := loadSnapshot(path)
		fail(err)
		checkErr := check(snap, results, calib, *maxRegress)
		if *out != "" {
			// Candidate snapshot for artifact upload, even on failure.
			fail(writeSnapshot(*out, candidate(*pr, *count, *note, calib, results)))
		}
		fail(checkErr)
		fmt.Fprintln(os.Stderr, "benchsnap: all pinned benchmarks within budget")
		return
	}

	snap := candidate(*pr, *count, *note, calib, results)
	if *baseline != "" {
		base, err := loadSnapshot(*baseline)
		fail(err)
		snap.Baseline = &Baseline{
			Note:          "pre-PR hot loop measured on the same machine with the same benchmark bodies",
			CalibrationNs: base.CalibrationNs,
			Benchmarks:    base.Benchmarks,
		}
		snap.Speedups = make(map[string]float64, len(results))
		var ratios []float64
		for name, cur := range results {
			if old, ok := base.Benchmarks[name]; ok && cur.MedianNsPerOp > 0 {
				r := old.MedianNsPerOp / cur.MedianNsPerOp
				snap.Speedups[name] = round2(r)
				ratios = append(ratios, r)
			}
		}
		snap.MedianSpeedup = round2(median(ratios))
		fmt.Fprintf(os.Stderr, "benchsnap: median speedup vs baseline: %.2f×\n", snap.MedianSpeedup)
	}
	fail(writeSnapshot(*out, snap))
	fmt.Fprintf(os.Stderr, "benchsnap: wrote %s\n", *out)
}

func candidate(pr, count int, note string, calib float64, results map[string]Measurement) *Snapshot {
	desc := description
	if note != "" {
		desc += " " + note
	}
	return &Snapshot{
		Schema:        1,
		PR:            pr,
		Description:   desc,
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Count:         count,
		CalibrationNs: calib,
		Benchmarks:    results,
		Command:       "go run ./cmd/benchsnap -out BENCH_<pr>.json [-baseline pre.json] | -check",
	}
}

func round2(v float64) float64 { return float64(int(v*100+0.5)) / 100 }

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
}
