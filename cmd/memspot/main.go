// Command memspot runs one level-2 thermal simulation (the MEMSpot stage
// of §4.3.1) for a workload mix under a chosen DTM policy and prints the
// run summary plus an ASCII temperature trace.
//
// Usage:
//
//	memspot -mix W1 -policy DTM-ACG -cooling AOHS_1.5
//	memspot -mix W2 -policy DTM-CDVFS+PID -model integrated -replicas 4
//	memspot -traces w1.traces -mix W1 -policy DTM-BW   # reuse dumped traces
package main

import (
	"flag"
	"fmt"
	"os"

	"dramtherm/internal/core"
	"dramtherm/internal/fbconfig"
	"dramtherm/internal/report"
	"dramtherm/internal/workload"
)

func main() {
	var (
		mixName  = flag.String("mix", "W1", "workload mix")
		policy   = flag.String("policy", "DTM-ACG", "policy (see core.PolicyNames)")
		cooling  = flag.String("cooling", "AOHS_1.5", "cooling config: AOHS_1.5 or FDHS_1.0")
		model    = flag.String("model", "isolated", "thermal model: isolated or integrated")
		replicas = flag.Int("replicas", 8, "batch copies per application")
		traces   = flag.String("traces", "", "optional gob trace file from tracegen")
	)
	flag.Parse()

	mix, err := workload.MixByName(*mixName)
	fail(err)
	cool := fbconfig.CoolingAOHS15
	if *cooling == "FDHS_1.0" {
		cool = fbconfig.CoolingFDHS10
	} else if *cooling != "AOHS_1.5" {
		fail(fmt.Errorf("unknown cooling %q", *cooling))
	}
	kind := core.Isolated
	if *model == "integrated" {
		kind = core.Integrated
	}

	cfg := core.DefaultConfig()
	cfg.Replicas = *replicas
	sys := core.NewSystem(cfg)
	if *traces != "" {
		f, err := os.Open(*traces)
		fail(err)
		fail(sys.Store().Load(f))
		f.Close()
	}

	p, err := sys.NewPolicy(*policy)
	fail(err)
	res, err := sys.Run(core.RunSpec{Mix: mix, Policy: p, Cooling: cool, Model: kind})
	fail(err)
	base, err := sys.Baseline(mix, cool, kind)
	fail(err)

	fmt.Printf("mix %s under %s (%s, %s model)\n", mix.Name, p.Name(), cool.Name(), kind)
	fmt.Printf("  running time:     %.0f s  (normalized %.3f vs No-limit)\n", res.Seconds, res.Seconds/base.Seconds)
	fmt.Printf("  memory traffic:   %.0f GB (read %.0f / write %.0f)\n", res.TotalTrafficGB(), res.ReadGB, res.WriteGB)
	fmt.Printf("  FBDIMM energy:    %.1f kJ   CPU energy: %.1f kJ\n", res.MemEnergyJ/1e3, res.CPUEnergyJ/1e3)
	fmt.Printf("  max AMB/DRAM:     %.1f / %.1f C   overshoot episodes: %d\n", res.MaxAMB, res.MaxDRAM, res.Overshoots)
	fmt.Printf("  jobs completed:   %d\n\n", res.Completed)

	fig := report.NewFigure("AMB temperature trace", "time (s)", "C")
	fig.Add("AMB", res.AMBTrace)
	fig.Add("DRAM", res.DRAMTrace)
	fmt.Print(fig.Chart(78, 16))
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
