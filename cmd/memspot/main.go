// Command memspot runs one level-2 thermal simulation (the MEMSpot stage
// of §4.3.1) for a workload mix under a chosen DTM policy and prints the
// run summary plus an ASCII temperature trace. Runs go through the
// internal/sweep engine, so the spec run and its No-limit normalization
// baseline share the one deduplicating run cache with every other entry
// point.
//
// Usage:
//
//	memspot -mix W1 -policy DTM-ACG -cooling AOHS_1.5
//	memspot -mix W2 -policy DTM-CDVFS+PID -model integrated -replicas 4
//	memspot -traces w1.traces -mix W1 -policy DTM-BW   # reuse dumped traces
//	memspot -mix W1 -instrscale 0.05                   # fast demo scale
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"dramtherm/internal/core"
	"dramtherm/internal/report"
	"dramtherm/internal/sweep"
)

func main() {
	var (
		mixName  = flag.String("mix", "W1", "workload mix")
		policy   = flag.String("policy", "DTM-ACG", "policy (see core.PolicyNames)")
		cooling  = flag.String("cooling", "AOHS_1.5", "cooling config: AOHS_1.5 or FDHS_1.0")
		model    = flag.String("model", "isolated", "thermal model: isolated or integrated")
		replicas = flag.Int("replicas", 8, "batch copies per application")
		scale    = flag.Float64("instrscale", 0, "application length scale factor (0 = 1.0; small values for demos)")
		traces   = flag.String("traces", "", "optional gob trace file from tracegen")
	)
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Replicas = *replicas
	if *scale > 0 {
		cfg.InstrScale = *scale
	}
	eng := sweep.NewEngine(core.NewSystem(cfg), 0)
	if *traces != "" {
		f, err := os.Open(*traces)
		fail(err)
		fail(eng.System().Store().Load(f))
		f.Close()
	}

	spec := sweep.Spec{Mix: *mixName, Policy: *policy, Cooling: *cooling, Model: *model}
	fail(eng.Validate(spec))

	ctx := context.Background()
	res, err := eng.Run(ctx, spec)
	fail(err)
	// The spec run is already cached, so this only adds the baseline.
	norm, err := eng.Normalized(ctx, spec)
	fail(err)

	fmt.Printf("mix %s under %s (%s, %s model)\n", *mixName, *policy, *cooling, *model)
	fmt.Printf("  running time:     %.0f s  (normalized %.3f vs No-limit)\n", res.Seconds, norm)
	fmt.Printf("  memory traffic:   %.0f GB (read %.0f / write %.0f)\n", res.TotalTrafficGB(), res.ReadGB, res.WriteGB)
	fmt.Printf("  FBDIMM energy:    %.1f kJ   CPU energy: %.1f kJ\n", res.MemEnergyJ/1e3, res.CPUEnergyJ/1e3)
	fmt.Printf("  max AMB/DRAM:     %.1f / %.1f C   overshoot episodes: %d\n", res.MaxAMB, res.MaxDRAM, res.Overshoots)
	fmt.Printf("  jobs completed:   %d\n\n", res.Completed)

	fig := report.NewFigure("AMB temperature trace", "time (s)", "C")
	fig.Add("AMB", res.AMBTrace)
	fig.Add("DRAM", res.DRAMTrace)
	fmt.Print(fig.Chart(78, 16))
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
