// Command metriclint scrapes a Prometheus text exposition endpoint and
// validates it with the same parser the unit tests use (internal/obs
// Lint) — CI's substitute for promtool, with zero dependencies. It can
// also assert that specific metric families are present, so a pipeline
// catches an instrumentation hookup silently falling off.
//
// Usage:
//
//	metriclint -url http://127.0.0.1:8080/metrics
//	metriclint -url http://127.0.0.1:8080/metrics -retry 10s \
//	    -require dramtherm_http_requests_total,dramtherm_cache_requests_total
//
// Exit status 0 when the scrape succeeds, the exposition parses clean,
// and every required family is present; 1 otherwise, with the reason on
// stderr. -retry keeps re-scraping until the deadline, so CI can start
// the daemon and the linter concurrently.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"dramtherm/internal/obs"
)

func main() {
	var (
		url     = flag.String("url", "http://127.0.0.1:8080/metrics", "metrics endpoint to scrape")
		retry   = flag.Duration("retry", 0, "keep retrying failed scrapes for this long (0 = single attempt)")
		require = flag.String("require", "", "comma-separated metric family names that must be present")
	)
	flag.Parse()

	deadline := time.Now().Add(*retry)
	var families []string
	for {
		var err error
		if families, err = scrape(*url); err == nil {
			break
		}
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "metriclint: %v\n", err)
			os.Exit(1)
		}
		time.Sleep(250 * time.Millisecond)
	}

	got := make(map[string]bool, len(families))
	for _, f := range families {
		got[f] = true
	}
	missing := 0
	for _, want := range strings.Split(*require, ",") {
		if want = strings.TrimSpace(want); want != "" && !got[want] {
			fmt.Fprintf(os.Stderr, "metriclint: required family %s missing\n", want)
			missing++
		}
	}
	if missing > 0 {
		os.Exit(1)
	}
	fmt.Printf("metriclint: %s ok, %d families\n", *url, len(families))
}

// scrape fetches the endpoint and parses the body, returning the family
// names seen or the first protocol/exposition error.
func scrape(url string) ([]string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	families, err := obs.Lint(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("invalid exposition from %s: %w", url, err)
	}
	return families, nil
}
