package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"dramtherm/internal/core"
	"dramtherm/internal/sim"
	"dramtherm/internal/sweep"
)

// newTestServer backs the API with a counting fake run function so API
// tests exercise routing, job lifecycle and deduplication without paying
// for real simulations.
func newTestServer(t *testing.T, workers int, delay time.Duration) (*httptest.Server, *atomic.Int64, *sweep.Engine) {
	t.Helper()
	eng := sweep.NewEngine(core.NewSystem(core.DefaultConfig()), workers)
	var builds atomic.Int64
	eng.SetRunFunc(func(ctx context.Context, rs core.RunSpec) (sim.MEMSpotResult, error) {
		builds.Add(1)
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return sim.MEMSpotResult{}, ctx.Err()
		}
		secs := 100.0
		if rs.Policy.Name() != "No-limit" {
			secs = 120
		}
		return sim.MEMSpotResult{Seconds: secs, Completed: 4, MaxAMB: 108}, nil
	})
	ts := httptest.NewServer(newServer(context.Background(), eng))
	t.Cleanup(ts.Close)
	return ts, &builds, eng
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestHealthz(t *testing.T) {
	ts, _, _ := newTestServer(t, 2, 0)
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	h := decode[map[string]any](t, resp)
	if h["status"] != "ok" {
		t.Fatalf("healthz = %v", h)
	}
}

func TestRunLifecycle(t *testing.T) {
	ts, builds, _ := newTestServer(t, 2, 5*time.Millisecond)
	resp := postJSON(t, ts.URL+"/v1/runs", sweep.Spec{Mix: "W1", Policy: "DTM-ACG"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	id := decode[map[string]string](t, resp)["id"]
	if id == "" {
		t.Fatal("no job id")
	}

	deadline := time.Now().Add(5 * time.Second)
	var job jobState
	for {
		r, err := http.Get(ts.URL + "/v1/runs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d", r.StatusCode)
		}
		job = decode[jobState](t, r)
		if job.Status != "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not finish")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if job.Status != "done" || job.Result == nil {
		t.Fatalf("job = %+v", job)
	}
	if job.Result.Seconds != 120 || job.Result.MaxAMB != 108 {
		t.Fatalf("result = %+v", job.Result)
	}
	if builds.Load() != 1 {
		t.Fatalf("builds = %d", builds.Load())
	}

	// Unknown job id is a 404.
	r, err := http.Get(ts.URL + "/v1/runs/run-999")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status %d", r.StatusCode)
	}
}

func TestRunValidation(t *testing.T) {
	ts, builds, _ := newTestServer(t, 2, 0)
	for _, body := range []any{
		sweep.Spec{Mix: "W99"},
		sweep.Spec{Mix: "W1", Policy: "DTM-NOPE"},
		map[string]any{"mix": []int{1}},
	} {
		resp := postJSON(t, ts.URL+"/v1/runs", body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %v: status %d, want 400", body, resp.StatusCode)
		}
	}
	if builds.Load() != 0 {
		t.Fatalf("invalid specs reached the backend %d times", builds.Load())
	}
}

// TestSweepDedup is the acceptance scenario: a sweep over 8 (mix,
// policy) combinations, submitted with every spec duplicated, runs
// concurrently with exactly one simulation per unique spec.
func TestSweepDedup(t *testing.T) {
	ts, builds, eng := newTestServer(t, 8, 5*time.Millisecond)
	grid := sweep.Grid{
		Mixes:    []string{"W1", "W2", "W3", "W4"},
		Policies: []string{"DTM-TS", "DTM-BW"},
	} // 8 unique combinations
	specs := grid.Expand()
	req := sweepRequest{Grid: &grid, Specs: specs} // every spec twice
	start := time.Now()
	resp := postJSON(t, ts.URL+"/v1/sweeps", req)
	wall := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	out := decode[sweepResponse](t, resp)
	if out.Count != 16 {
		t.Fatalf("count = %d, want 16", out.Count)
	}
	if builds.Load() != 8 {
		t.Fatalf("backend ran %d simulations, want 8 (duplicate in-flight specs must dedup)", builds.Load())
	}
	if st := eng.Stats(); st.Builds != 8 || st.Hits+st.Waits != 8 {
		t.Fatalf("cache stats %+v", st)
	}
	// 8 × 5 ms of work on 8 workers must not serialize to 40 ms+.
	if wall > 4*time.Second {
		t.Fatalf("sweep wall %v suggests serial execution", wall)
	}
	// The table aggregates mixes × policies.
	if len(out.Table.Rows) != 4 || len(out.Table.Header) != 3 {
		t.Fatalf("table %dx%d: %+v", len(out.Table.Rows), len(out.Table.Header), out.Table)
	}
	for _, res := range out.Results {
		if res.Summary.Seconds != 120 {
			t.Fatalf("summary %+v", res.Summary)
		}
	}
}

func TestSweepNormalize(t *testing.T) {
	ts, _, _ := newTestServer(t, 4, 0)
	resp := postJSON(t, ts.URL+"/v1/sweeps", sweepRequest{
		Grid:      &sweep.Grid{Mixes: []string{"W1"}, Policies: []string{"DTM-TS"}},
		Normalize: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	out := decode[sweepResponse](t, resp)
	if n := out.Results[0].Summary.Normalized; n != 1.2 {
		t.Fatalf("normalized = %v, want 1.2", n)
	}
}

func TestSweepValidation(t *testing.T) {
	ts, builds, _ := newTestServer(t, 2, 0)
	for _, req := range []sweepRequest{
		{}, // empty
		{Grid: &sweep.Grid{}},
		{Specs: []sweep.Spec{{Mix: "W1"}, {Mix: "W77"}}},
	} {
		resp := postJSON(t, ts.URL+"/v1/sweeps", req)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("req %+v: status %d, want 400", req, resp.StatusCode)
		}
	}
	if builds.Load() != 0 {
		t.Fatalf("invalid sweeps reached the backend %d times", builds.Load())
	}
}

// TestServerShutdownCancelsJobs checks async jobs abort when the server
// base context is cancelled (graceful shutdown path).
func TestServerShutdownCancelsJobs(t *testing.T) {
	eng := sweep.NewEngine(core.NewSystem(core.DefaultConfig()), 2)
	started := make(chan struct{}, 16)
	eng.SetRunFunc(func(ctx context.Context, rs core.RunSpec) (sim.MEMSpotResult, error) {
		started <- struct{}{}
		<-ctx.Done()
		return sim.MEMSpotResult{}, ctx.Err()
	})
	base, cancel := context.WithCancel(context.Background())
	ts := httptest.NewServer(newServer(base, eng))
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/runs", sweep.Spec{Mix: "W1"})
	id := decode[map[string]string](t, resp)["id"]
	<-started // the job is genuinely in flight
	cancel()  // server shutdown

	deadline := time.Now().Add(5 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/v1/runs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		job := decode[jobState](t, r)
		if job.Status == "error" {
			if job.Error == "" {
				t.Fatal("cancelled job has no error")
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job not cancelled: %+v", job)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSweepRealTiny drives one real reduced-scale simulation through the
// full HTTP path, proving the service end-to-end.
func TestSweepRealTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation skipped in -short mode")
	}
	cfg := core.DefaultConfig()
	cfg.Replicas = 1
	cfg.InstrScale = 0.01
	eng := sweep.NewEngine(core.NewSystem(cfg), 2)
	ts := httptest.NewServer(newServer(context.Background(), eng))
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/sweeps", sweepRequest{
		Specs: []sweep.Spec{{Mix: "W1"}, {Mix: "W1", Policy: "DTM-TS"}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	out := decode[sweepResponse](t, resp)
	for i, r := range out.Results {
		if r.Summary.Seconds <= 0 {
			t.Fatalf("result %d: %+v", i, r.Summary)
		}
	}
	if out.Results[1].Summary.Seconds < out.Results[0].Summary.Seconds {
		t.Fatalf("DTM-TS (%v s) ran faster than No-limit (%v s)",
			out.Results[1].Summary.Seconds, out.Results[0].Summary.Seconds)
	}
}
