// Command dramthermd serves the DRAM thermal simulator over HTTP/JSON:
// simulation-as-a-service on top of internal/sweep, with the wire layer
// in internal/httpapi. Concurrent requests for the same run spec share
// one simulation; distinct specs run in parallel on a bounded worker
// pool. Asynchronous jobs are listable, cancellable, streamable over
// SSE, and evicted after a TTL.
//
// Usage:
//
//	dramthermd -addr :8080
//	dramthermd -addr :8080 -workers 8 -segment-dir /var/lib/dramtherm/state
//	dramthermd -job-ttl 1h -max-jobs 4096
//	dramthermd -peers http://w1:8080,http://w2:8080   # cluster coordinator
//	dramthermd -peers @/etc/dramtherm/peers            # one URL per line
//	dramthermd -gossip -peers http://w1:8080 -advertise http://coord:8080
//	dramthermd -gossip -join http://coord:8080 -advertise http://w3:8080
//
// With -peers the node coordinates a cluster: runs are fanned out to the
// listed dramthermd workers by consistent hashing on the canonical spec
// key (each worker's cache stays hot for its shard), dead peers are
// ejected by health probes and failed runs retry on the next ring member,
// falling back to local execution when every peer is down. Sweeps are
// dispatched in batches by default — each peer receives its entire shard
// of the grid in one /v1/exec/batch request and streams per-spec
// outcomes back — so a big grid costs one round trip per peer, not per
// spec; -batch=false reverts to one /v1/exec per spec. Any node can be a
// coordinator; workers need no flags at all. See docs/ARCHITECTURE.md.
//
// With -gossip the membership is epidemic instead of static: the node
// keeps a versioned membership table (id, url, incarnation,
// alive/suspect/dead) and anti-entropy syncs it with a few random
// members per interval over POST /v1/gossip, so workers join and leave
// a running cluster without a coordinator restart. -peers becomes the
// seed list (and the coordinator's initial ring); a worker joins an
// existing cluster with -join <seed-url> and needs no restart of
// anything else. Ring-probe ejections feed the table as suspicions; a
// falsely suspected node refutes by bumping its incarnation, and
// confirmed-dead members are quarantined, then forgotten. Without
// -gossip the static -peers list behaves exactly as before (legacy
// mode).
//
// Endpoints:
//
//	GET    /v1/healthz           version, uptime, run-cache statistics, peer ring, membership
//	GET    /metrics              Prometheus text exposition (cache, pool, jobs, HTTP, ring, gossip)
//	GET    /debug/pprof/         runtime profiles (opt-in via -pprof)
//	POST   /v1/gossip            anti-entropy membership exchange (with -gossip)
//	POST   /v1/handoff           cache replication ingest: NDJSON result stream (with -replication)
//	POST   /v1/exec              synchronous single-run execution (cluster dispatch)
//	POST   /v1/exec/batch        shard execution: specs in, streamed NDJSON outcomes out
//	POST   /v1/runs              async submit: {"mix":"W1","policy":"DTM-ACG"} → {"id":"run-1"}
//	GET    /v1/runs              job listing (?status=running, ?offset=, ?limit=)
//	GET    /v1/runs/{id}         job status/result (?traces=1 for temperature traces)
//	GET    /v1/runs/{id}/events  live per-spec progress over SSE
//	DELETE /v1/runs/{id}         cancel in-flight / evict finished
//	POST   /v1/sweeps            sync grid sweep (?async=1 submits a job), e.g.
//	                             {"grid":{"mixes":["W1","W2"],"policies":["DTM-TS","DTM-BW"]},
//	                              "normalize":true}
//
// With -segment-dir the run cache and level-1 trace store are durable:
// every completed result is appended to a crash-safe segment log as it
// finishes (not on shutdown), replayed at boot, and compacted in the
// background. -state names a legacy gob blob from older releases; it is
// migrated into <path>.d once and aliased there from then on. With
// -replication each completed result is also pushed to its key's ring
// successor over POST /v1/handoff (RF=2), cached shards stream to new
// owners on membership changes, and a dead primary's replica holder is
// promoted in place — so a worker crash loses no cached result.
//
// On SIGINT/SIGTERM the server shuts down gracefully: it stops
// accepting requests and cancels in-flight simulations.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"dramtherm/internal/core"
	"dramtherm/internal/httpapi"
	"dramtherm/internal/obs"
	"dramtherm/internal/sweep"
	"dramtherm/internal/sweep/remote"
	"dramtherm/internal/sweep/remote/gossip"
)

// version is reported by GET /v1/healthz.
const version = "0.9.0"

// parsePeers expands the -peers flag: either a comma-separated list of
// entries or @path naming a file with one entry per line (blank lines
// and #-comments skipped). Each entry is a bare URL or id=url.
func parsePeers(arg string) ([]remote.Peer, error) {
	var entries []string
	if rest, ok := strings.CutPrefix(arg, "@"); ok {
		data, err := os.ReadFile(rest)
		if err != nil {
			return nil, err
		}
		for _, line := range strings.Split(string(data), "\n") {
			if line = strings.TrimSpace(line); line != "" && !strings.HasPrefix(line, "#") {
				entries = append(entries, line)
			}
		}
	} else {
		for _, e := range strings.Split(arg, ",") {
			if e = strings.TrimSpace(e); e != "" {
				entries = append(entries, e)
			}
		}
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("no peers in %q", arg)
	}
	out := make([]remote.Peer, len(entries))
	for i, e := range entries {
		if id, url, ok := strings.Cut(e, "="); ok {
			out[i] = remote.Peer{ID: id, URL: url}
		} else {
			out[i] = remote.Peer{URL: e}
		}
	}
	return out, nil
}

// seedMembers converts configured peers into gossip seed members,
// deriving ids through remote.DeriveID so the ring and gossip layers
// agree on member identity.
func seedMembers(peers []remote.Peer) []gossip.Member {
	out := make([]gossip.Member, 0, len(peers))
	for _, p := range peers {
		url := strings.TrimRight(p.URL, "/")
		id := p.ID
		if id == "" {
			id = remote.DeriveID(url)
		}
		out = append(out, gossip.Member{ID: id, URL: url})
	}
	return out
}

// advertiseURL resolves the base URL other members reach this node at:
// the -advertise flag when given, otherwise a loopback guess from -addr
// (good enough for single-host clusters and demos).
func advertiseURL(advertise, addr string) string {
	if advertise != "" {
		return strings.TrimRight(advertise, "/")
	}
	if strings.HasPrefix(addr, ":") {
		return "http://127.0.0.1" + addr
	}
	return "http://" + addr
}

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "simulation worker pool width (0 = GOMAXPROCS; with -peers, cluster capacity + GOMAXPROCS)")
		replicas = flag.Int("replicas", 0, "batch copies per application (0 = Chapter 4 default)")
		scale    = flag.Float64("instrscale", 0, "application length scale factor (0 = 1.0; small values for demos)")
		state    = flag.String("state", "", "legacy gob state file: migrated once into <path>.d segment logs (alias for -segment-dir <path>.d)")
		segDir   = flag.String("segment-dir", "", "durable state: append-only segment-log directory; results persist as they complete and replay on boot")
		compact  = flag.Duration("compact-interval", 10*time.Minute, "segment-log compaction period (0 disables background compaction)")
		prefixOn = flag.Bool("prefix-share", false, "prefix-state checkpointing: specs differing only in DTM policy share their warm-up prefix — one leader run records decisions and checkpoints, later policies resume from the checkpoint before their first divergent decision (results stay bit-identical to cold replay)")
		replicat = flag.Bool("replication", false, "with -peers: replicate each completed result to its key's ring successor (RF=2) and hand cached shards to new owners on membership changes")
		jobTTL   = flag.Duration("job-ttl", 15*time.Minute, "evict finished jobs this long after completion (0 disables eviction)")
		maxJobs  = flag.Int("max-jobs", sweep.DefaultMaxJobs, "job registry bound; submissions beyond it are rejected while all jobs run")
		peers    = flag.String("peers", "", "cluster mode: comma-separated peer URLs (optionally id=url), or @file with one per line")
		probe    = flag.Duration("peer-probe", 5*time.Second, "peer health-probe period (<=0 disables active probing)")
		perPeer  = flag.Int("peer-conns", 4, "max concurrent requests per peer")
		batch    = flag.Bool("batch", true, "with -peers: dispatch each peer its whole sweep shard in one /v1/exec/batch request (false = one /v1/exec per spec)")

		gossipOn  = flag.Bool("gossip", false, "epidemic membership: gossip the peer table over POST /v1/gossip so workers join/leave without coordinator restarts (-peers becomes the seed list)")
		join      = flag.String("join", "", "with -gossip: seed member URLs (optionally id=url, or @file) to join an existing cluster through, without coordinating")
		advertise = flag.String("advertise", "", "with -gossip: base URL other members reach this node at (default http://127.0.0.1<addr>)")
		nodeID    = flag.String("id", "", "with -gossip: stable member id (default derived from the advertised URL)")
		gossipInt = flag.Duration("gossip-interval", time.Second, "gossip round period")

		logFormat = flag.String("log-format", "text", "log output format: text or json")
		pprofOn   = flag.Bool("pprof", false, "serve net/http/pprof profiles under /debug/pprof/")
	)
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		log.Fatalf("-log-format: want text or json, got %q", *logFormat)
	}
	logger := slog.New(handler)
	slog.SetDefault(logger)
	fatalf := func(format string, args ...any) {
		logger.Error(fmt.Sprintf(format, args...))
		os.Exit(1)
	}

	// One registry covers every layer: the engine's cache and worker
	// pool, the HTTP middleware, and (when enabled) the remote backend
	// and gossip node all register here, and GET /metrics renders it.
	reg := obs.NewRegistry()
	reg.SampleFunc(obs.KindGauge, "dramtherm_build_info",
		"Build metadata; the value is always 1.", []string{"version"},
		func() []obs.Sample {
			return []obs.Sample{{LabelValues: []string{version}, Value: 1}}
		})

	cfg := core.DefaultConfig()
	if *replicas > 0 {
		cfg.Replicas = *replicas
	}
	if *scale > 0 {
		cfg.InstrScale = *scale
	}

	var peerList []remote.Peer
	if *peers != "" {
		var err error
		if peerList, err = parsePeers(*peers); err != nil {
			fatalf("-peers: %v", err)
		}
	}
	var joinList []remote.Peer
	if *join != "" {
		if !*gossipOn {
			fatalf("-join requires -gossip")
		}
		var err error
		if joinList, err = parsePeers(*join); err != nil {
			fatalf("-join: %v", err)
		}
	}
	poolWidth := *workers
	if poolWidth == 0 && len(peerList) > 0 {
		// A coordinator's pool slots mostly wait on the network, not the
		// CPU: size for the cluster's capacity plus local-fallback
		// headroom instead of local cores. -workers overrides.
		poolWidth = len(peerList)**perPeer + runtime.GOMAXPROCS(0)
	}
	eng := sweep.NewEngine(core.NewSystem(cfg), poolWidth)
	if *prefixOn {
		// Before Instrument (registers the prefix metric families) and
		// before EnableSegmentLog (replays persisted checkpoint records
		// into the sharer).
		eng.EnablePrefixSharing()
	}
	eng.Instrument(reg)

	// -state is a migrating alias for -segment-dir: the legacy gob blob
	// (if any) is imported once into <path>.d and renamed aside; from
	// then on the segment log under that directory is the state.
	stateDir := *segDir
	if stateDir == "" && *state != "" {
		stateDir = *state + ".d"
	}
	if stateDir != "" {
		if err := eng.EnableSegmentLog(stateDir, *compact); err != nil {
			fatalf("-segment-dir: %v", err)
		}
		defer func() {
			if err := eng.Close(); err != nil {
				logger.Warn("state close", "err", err.Error())
			}
		}()
		if *state != "" {
			switch migrated, err := eng.MigrateLegacyStateFile(*state); {
			case err != nil:
				fatalf("-state: migrating %s: %v", *state, err)
			case migrated:
				logger.Info("legacy state migrated", "from", *state, "to", stateDir)
			}
		}
		if st, ok := eng.StateStats(); ok {
			logger.Info("state replayed", "dir", stateDir, "segments", st.Segments,
				"bytes", st.Bytes, "traces", eng.System().Store().Len())
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	apiCfg := httpapi.Config{JobTTL: *jobTTL, MaxJobs: *maxJobs, Version: version, Logger: logger, Metrics: reg}
	if apiCfg.JobTTL <= 0 {
		apiCfg.JobTTL = -1 // flag convention: 0 disables; Config uses <0 for that
	}

	// gnode late-binds the gossip node into the backend's detector
	// callbacks: the backend must exist before the node (the node's
	// membership deltas drive SetMembers), so the callbacks may fire
	// before the node is stored.
	var gnode atomic.Pointer[gossip.Node]
	var backend *remote.Backend
	if len(peerList) > 0 {
		probeEvery := *probe
		if probeEvery <= 0 {
			probeEvery = -1 // flag convention: 0 disables; Config uses <0 for that
		}
		bcfg := remote.Config{
			Peers:       peerList,
			Key:         eng.Key,
			Local:       eng.Exec,
			MaxPerPeer:  *perPeer,
			ProbeEvery:  probeEvery,
			Logger:      logger,
			Replication: *replicat,
			Entries:     eng.Range,
		}
		if *gossipOn {
			// Ring-probe ejections are the local failure detector behind
			// gossip suspicion; probe-confirmed recoveries clear it.
			bcfg.OnPeerDown = func(id string, err error) {
				if n := gnode.Load(); n != nil {
					n.Suspect(id)
				}
			}
			bcfg.OnPeerUp = func(id string) {
				if n := gnode.Load(); n != nil {
					n.Alive(id)
				}
			}
		}
		var err error
		if backend, err = remote.New(bcfg); err != nil {
			fatalf("-peers: %v", err)
		}
		defer backend.Close()
		backend.Instrument(reg)
		if *batch {
			eng.SetBatchBackend(backend)
		} else {
			eng.SetBackend(backend)
		}
		apiCfg.ClusterStatus = func() any { return backend.Status() }
		if *replicat {
			apiCfg.ReplicationStatus = func() any { return backend.ReplicationStatus() }
		}
		logger.Info("cluster mode: coordinating peers",
			"peers", len(peerList), "batch", *batch, "replication", *replicat)
	}

	if *gossipOn {
		self := gossip.Member{ID: *nodeID, URL: advertiseURL(*advertise, *addr)}
		if self.ID == "" {
			self.ID = remote.DeriveID(self.URL)
		}
		gcfg := gossip.Config{
			Self:     self,
			Seeds:    seedMembers(append(append([]remote.Peer(nil), peerList...), joinList...)),
			Interval: *gossipInt,
			Logger:   logger,
		}
		if backend != nil {
			selfID := self.ID
			gcfg.OnChange = func(ms []gossip.Member) {
				var ring []remote.Peer
				for _, m := range ms {
					if m.ID != selfID && m.State != gossip.Dead && m.URL != "" {
						ring = append(ring, remote.Peer{ID: m.ID, URL: m.URL})
					}
				}
				backend.SetMembers(ring)
			}
		}
		node, err := gossip.NewNode(gcfg)
		if err != nil {
			fatalf("-gossip: %v", err)
		}
		defer node.Close()
		node.Instrument(reg)
		gnode.Store(node)
		apiCfg.Gossip = node
		logger.Info("gossip mode: joined membership",
			"member", self.ID, "url", self.URL, "seeds", len(gcfg.Seeds), "interval", gossipInt.String())
	}

	api := httpapi.New(ctx, eng, apiCfg)
	defer api.Close()
	root := http.Handler(api)
	if *pprofOn {
		// pprof is opt-in: profiles expose internals (and Profile blocks a
		// goroutine for the sampling window), so they stay off the default
		// surface. The API handles everything else.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", api)
		root = mux
	}
	srv := &http.Server{
		Addr:        *addr,
		Handler:     root,
		BaseContext: func(net.Listener) context.Context { return ctx },
	}

	errc := make(chan error, 1)
	go func() {
		logger.Info("dramthermd listening",
			"addr", *addr, "workers", *workers, "job_ttl", jobTTL.String(),
			"max_jobs", *maxJobs, "pprof", *pprofOn, "config", eng.System().ConfigDigest())
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	logger.Info("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		logger.Warn("shutdown", "err", err.Error())
	}

}
