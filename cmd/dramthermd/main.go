// Command dramthermd serves the DRAM thermal simulator over HTTP/JSON:
// simulation-as-a-service on top of internal/sweep, with the wire layer
// in internal/httpapi. Concurrent requests for the same run spec share
// one simulation; distinct specs run in parallel on a bounded worker
// pool. Asynchronous jobs are listable, cancellable, streamable over
// SSE, and evicted after a TTL.
//
// Usage:
//
//	dramthermd -addr :8080
//	dramthermd -addr :8080 -workers 8 -state /var/lib/dramtherm/state.gob
//	dramthermd -job-ttl 1h -max-jobs 4096
//	dramthermd -peers http://w1:8080,http://w2:8080   # cluster coordinator
//	dramthermd -peers @/etc/dramtherm/peers            # one URL per line
//
// With -peers the node coordinates a cluster: runs are fanned out to the
// listed dramthermd workers by consistent hashing on the canonical spec
// key (each worker's cache stays hot for its shard), dead peers are
// ejected by health probes and failed runs retry on the next ring member,
// falling back to local execution when every peer is down. Sweeps are
// dispatched in batches by default — each peer receives its entire shard
// of the grid in one /v1/exec/batch request and streams per-spec
// outcomes back — so a big grid costs one round trip per peer, not per
// spec; -batch=false reverts to one /v1/exec per spec. Any node can be a
// coordinator; workers need no flags at all. See docs/ARCHITECTURE.md.
//
// Endpoints:
//
//	GET    /v1/healthz           version, uptime, run-cache statistics, peer ring
//	POST   /v1/exec              synchronous single-run execution (cluster dispatch)
//	POST   /v1/exec/batch        shard execution: specs in, streamed NDJSON outcomes out
//	POST   /v1/runs              async submit: {"mix":"W1","policy":"DTM-ACG"} → {"id":"run-1"}
//	GET    /v1/runs              job listing (?status=running, ?offset=, ?limit=)
//	GET    /v1/runs/{id}         job status/result (?traces=1 for temperature traces)
//	GET    /v1/runs/{id}/events  live per-spec progress over SSE
//	DELETE /v1/runs/{id}         cancel in-flight / evict finished
//	POST   /v1/sweeps            sync grid sweep (?async=1 submits a job), e.g.
//	                             {"grid":{"mixes":["W1","W2"],"policies":["DTM-TS","DTM-BW"]},
//	                              "normalize":true}
//
// On SIGINT/SIGTERM the server shuts down gracefully: it stops accepting
// requests, cancels in-flight simulations, and (with -state) persists the
// run cache and level-1 trace store for a warm restart.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"dramtherm/internal/core"
	"dramtherm/internal/httpapi"
	"dramtherm/internal/sweep"
	"dramtherm/internal/sweep/remote"
)

// version is reported by GET /v1/healthz.
const version = "0.4.0"

// parsePeers expands the -peers flag: either a comma-separated list of
// entries or @path naming a file with one entry per line (blank lines
// and #-comments skipped). Each entry is a bare URL or id=url.
func parsePeers(arg string) ([]remote.Peer, error) {
	var entries []string
	if rest, ok := strings.CutPrefix(arg, "@"); ok {
		data, err := os.ReadFile(rest)
		if err != nil {
			return nil, err
		}
		for _, line := range strings.Split(string(data), "\n") {
			if line = strings.TrimSpace(line); line != "" && !strings.HasPrefix(line, "#") {
				entries = append(entries, line)
			}
		}
	} else {
		for _, e := range strings.Split(arg, ",") {
			if e = strings.TrimSpace(e); e != "" {
				entries = append(entries, e)
			}
		}
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("no peers in %q", arg)
	}
	out := make([]remote.Peer, len(entries))
	for i, e := range entries {
		if id, url, ok := strings.Cut(e, "="); ok {
			out[i] = remote.Peer{ID: id, URL: url}
		} else {
			out[i] = remote.Peer{URL: e}
		}
	}
	return out, nil
}

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "simulation worker pool width (0 = GOMAXPROCS; with -peers, cluster capacity + GOMAXPROCS)")
		replicas = flag.Int("replicas", 0, "batch copies per application (0 = Chapter 4 default)")
		scale    = flag.Float64("instrscale", 0, "application length scale factor (0 = 1.0; small values for demos)")
		state    = flag.String("state", "", "gob state file: loaded at startup if present, saved on shutdown")
		jobTTL   = flag.Duration("job-ttl", 15*time.Minute, "evict finished jobs this long after completion (0 disables eviction)")
		maxJobs  = flag.Int("max-jobs", sweep.DefaultMaxJobs, "job registry bound; submissions beyond it are rejected while all jobs run")
		peers    = flag.String("peers", "", "cluster mode: comma-separated peer URLs (optionally id=url), or @file with one per line")
		probe    = flag.Duration("peer-probe", 5*time.Second, "peer health-probe period (<=0 disables active probing)")
		perPeer  = flag.Int("peer-conns", 4, "max concurrent requests per peer")
		batch    = flag.Bool("batch", true, "with -peers: dispatch each peer its whole sweep shard in one /v1/exec/batch request (false = one /v1/exec per spec)")
	)
	flag.Parse()

	cfg := core.DefaultConfig()
	if *replicas > 0 {
		cfg.Replicas = *replicas
	}
	if *scale > 0 {
		cfg.InstrScale = *scale
	}

	var peerList []remote.Peer
	if *peers != "" {
		var err error
		if peerList, err = parsePeers(*peers); err != nil {
			log.Fatalf("-peers: %v", err)
		}
	}
	poolWidth := *workers
	if poolWidth == 0 && len(peerList) > 0 {
		// A coordinator's pool slots mostly wait on the network, not the
		// CPU: size for the cluster's capacity plus local-fallback
		// headroom instead of local cores. -workers overrides.
		poolWidth = len(peerList)**perPeer + runtime.GOMAXPROCS(0)
	}
	eng := sweep.NewEngine(core.NewSystem(cfg), poolWidth)

	if *state != "" {
		switch loaded, err := eng.LoadStateFile(*state); {
		case err != nil:
			log.Printf("state %s not loaded: %v", *state, err)
		case loaded:
			log.Printf("state %s loaded: %d trace records", *state, eng.System().Store().Len())
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	apiCfg := httpapi.Config{JobTTL: *jobTTL, MaxJobs: *maxJobs, Version: version}
	if apiCfg.JobTTL <= 0 {
		apiCfg.JobTTL = -1 // flag convention: 0 disables; Config uses <0 for that
	}

	if len(peerList) > 0 {
		probeEvery := *probe
		if probeEvery <= 0 {
			probeEvery = -1 // flag convention: 0 disables; Config uses <0 for that
		}
		backend, err := remote.New(remote.Config{
			Peers:      peerList,
			Key:        eng.Key,
			Local:      eng.Exec,
			MaxPerPeer: *perPeer,
			ProbeEvery: probeEvery,
			Logf:       log.Printf,
		})
		if err != nil {
			log.Fatalf("-peers: %v", err)
		}
		defer backend.Close()
		if *batch {
			eng.SetBatchBackend(backend)
		} else {
			eng.SetBackend(backend)
		}
		apiCfg.ClusterStatus = func() any { return backend.Status() }
		log.Printf("cluster mode: coordinating %d peer(s) (batch=%v)", len(peerList), *batch)
	}

	api := httpapi.New(ctx, eng, apiCfg)
	defer api.Close()
	srv := &http.Server{
		Addr:        *addr,
		Handler:     api,
		BaseContext: func(net.Listener) context.Context { return ctx },
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("dramthermd listening on %s (workers=%d, job-ttl=%s, max-jobs=%d, config %s)",
			*addr, *workers, *jobTTL, *maxJobs, eng.System().ConfigDigest())
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}

	if *state != "" {
		if err := eng.SaveStateFile(*state); err != nil {
			log.Printf("state %s not saved: %v", *state, err)
		} else {
			log.Printf("state saved to %s", *state)
		}
	}
}
