// Command dramthermd serves the DRAM thermal simulator over HTTP/JSON:
// simulation-as-a-service on top of internal/sweep, with the wire layer
// in internal/httpapi. Concurrent requests for the same run spec share
// one simulation; distinct specs run in parallel on a bounded worker
// pool. Asynchronous jobs are listable, cancellable, streamable over
// SSE, and evicted after a TTL.
//
// Usage:
//
//	dramthermd -addr :8080
//	dramthermd -addr :8080 -workers 8 -state /var/lib/dramtherm/state.gob
//	dramthermd -job-ttl 1h -max-jobs 4096
//
// Endpoints:
//
//	GET    /v1/healthz           liveness + run-cache statistics
//	POST   /v1/runs              async submit: {"mix":"W1","policy":"DTM-ACG"} → {"id":"run-1"}
//	GET    /v1/runs              job listing (?status=running, ?offset=, ?limit=)
//	GET    /v1/runs/{id}         job status/result (?traces=1 for temperature traces)
//	GET    /v1/runs/{id}/events  live per-spec progress over SSE
//	DELETE /v1/runs/{id}         cancel in-flight / evict finished
//	POST   /v1/sweeps            sync grid sweep (?async=1 submits a job), e.g.
//	                             {"grid":{"mixes":["W1","W2"],"policies":["DTM-TS","DTM-BW"]},
//	                              "normalize":true}
//
// On SIGINT/SIGTERM the server shuts down gracefully: it stops accepting
// requests, cancels in-flight simulations, and (with -state) persists the
// run cache and level-1 trace store for a warm restart.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dramtherm/internal/core"
	"dramtherm/internal/httpapi"
	"dramtherm/internal/sweep"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "simulation worker pool width (0 = GOMAXPROCS)")
		replicas = flag.Int("replicas", 0, "batch copies per application (0 = Chapter 4 default)")
		scale    = flag.Float64("instrscale", 0, "application length scale factor (0 = 1.0; small values for demos)")
		state    = flag.String("state", "", "gob state file: loaded at startup if present, saved on shutdown")
		jobTTL   = flag.Duration("job-ttl", 15*time.Minute, "evict finished jobs this long after completion (0 disables eviction)")
		maxJobs  = flag.Int("max-jobs", sweep.DefaultMaxJobs, "job registry bound; submissions beyond it are rejected while all jobs run")
	)
	flag.Parse()

	cfg := core.DefaultConfig()
	if *replicas > 0 {
		cfg.Replicas = *replicas
	}
	if *scale > 0 {
		cfg.InstrScale = *scale
	}
	eng := sweep.NewEngine(core.NewSystem(cfg), *workers)

	if *state != "" {
		switch loaded, err := eng.LoadStateFile(*state); {
		case err != nil:
			log.Printf("state %s not loaded: %v", *state, err)
		case loaded:
			log.Printf("state %s loaded: %d trace records", *state, eng.System().Store().Len())
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ttl := *jobTTL
	if ttl <= 0 {
		ttl = -1 // flag convention: 0 disables; Config uses <0 for that
	}
	api := httpapi.New(ctx, eng, httpapi.Config{JobTTL: ttl, MaxJobs: *maxJobs})
	defer api.Close()
	srv := &http.Server{
		Addr:        *addr,
		Handler:     api,
		BaseContext: func(net.Listener) context.Context { return ctx },
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("dramthermd listening on %s (workers=%d, job-ttl=%s, max-jobs=%d, config %s)",
			*addr, *workers, *jobTTL, *maxJobs, eng.System().ConfigDigest())
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}

	if *state != "" {
		if err := eng.SaveStateFile(*state); err != nil {
			log.Printf("state %s not saved: %v", *state, err)
		} else {
			log.Printf("state saved to %s", *state)
		}
	}
}
