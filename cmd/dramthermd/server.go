package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"dramtherm/internal/sim"
	"dramtherm/internal/sweep"
)

// server exposes a sweep.Engine over HTTP/JSON:
//
//	POST /v1/runs       submit one run asynchronously → {"id": ...}
//	GET  /v1/runs/{id}  job status and, when done, the result summary
//	POST /v1/sweeps     execute a spec list or grid synchronously
//	GET  /v1/healthz    liveness + cache statistics
type server struct {
	eng *sweep.Engine
	mux *http.ServeMux

	// base is the lifetime context of asynchronous jobs; cancelling it
	// (server shutdown) aborts in-flight simulations.
	base context.Context

	mu     sync.Mutex
	nextID int
	jobs   map[string]*jobState
}

// jobState is one asynchronous run.
type jobState struct {
	ID        string      `json:"id"`
	Spec      sweep.Spec  `json:"spec"`
	Status    string      `json:"status"` // "running", "done", "error"
	Error     string      `json:"error,omitempty"`
	Result    *runSummary `json:"result,omitempty"`
	Submitted time.Time   `json:"submitted"`
	Finished  *time.Time  `json:"finished,omitempty"`
}

// runSummary is the wire form of a result: the scalar aggregates without
// the (potentially long) temperature traces.
type runSummary struct {
	Seconds    float64 `json:"seconds"`
	Normalized float64 `json:"normalized,omitempty"`
	TimedOut   bool    `json:"timed_out,omitempty"`
	Completed  int     `json:"completed"`
	ReadGB     float64 `json:"read_gb"`
	WriteGB    float64 `json:"write_gb"`
	MemEnergyJ float64 `json:"mem_energy_j"`
	CPUEnergyJ float64 `json:"cpu_energy_j"`
	MaxAMB     float64 `json:"max_amb_c"`
	MaxDRAM    float64 `json:"max_dram_c"`
	Overshoots int     `json:"overshoots"`
}

func summarize(r sim.MEMSpotResult) *runSummary {
	return &runSummary{
		Seconds:    r.Seconds,
		TimedOut:   r.TimedOut,
		Completed:  r.Completed,
		ReadGB:     r.ReadGB,
		WriteGB:    r.WriteGB,
		MemEnergyJ: r.MemEnergyJ,
		CPUEnergyJ: r.CPUEnergyJ,
		MaxAMB:     r.MaxAMB,
		MaxDRAM:    r.MaxDRAM,
		Overshoots: r.Overshoots,
	}
}

// newServer wires the routes. base bounds the lifetime of async jobs.
func newServer(base context.Context, eng *sweep.Engine) *server {
	s := &server{
		eng:  eng,
		mux:  http.NewServeMux(),
		base: base,
		jobs: make(map[string]*jobState),
	}
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("POST /v1/runs", s.handleSubmitRun)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleGetRun)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSweep)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // nothing to do about a dead client
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := len(s.jobs)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"jobs":   jobs,
		"cache":  s.eng.Stats(),
	})
}

func (s *server) handleSubmitRun(w http.ResponseWriter, r *http.Request) {
	var spec sweep.Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding spec: %w", err))
		return
	}
	// Validate now so the client gets a 400 rather than a failed job.
	if err := s.eng.Validate(spec); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	s.nextID++
	job := &jobState{
		ID:        fmt.Sprintf("run-%d", s.nextID),
		Spec:      spec,
		Status:    "running",
		Submitted: time.Now(),
	}
	s.jobs[job.ID] = job
	s.mu.Unlock()

	go func() {
		res, err := s.eng.Run(s.base, spec)
		now := time.Now()
		s.mu.Lock()
		defer s.mu.Unlock()
		job.Finished = &now
		if err != nil {
			job.Status = "error"
			job.Error = err.Error()
			return
		}
		job.Status = "done"
		job.Result = summarize(res)
	}()
	writeJSON(w, http.StatusAccepted, map[string]string{"id": job.ID})
}

func (s *server) handleGetRun(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	job, ok := s.jobs[r.PathValue("id")]
	var snapshot jobState
	if ok {
		snapshot = *job
	}
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, snapshot)
}

// sweepRequest is the POST /v1/sweeps body: either an explicit spec list
// or a grid to expand (or both, concatenated).
type sweepRequest struct {
	Specs     []sweep.Spec `json:"specs,omitempty"`
	Grid      *sweep.Grid  `json:"grid,omitempty"`
	Normalize bool         `json:"normalize,omitempty"`
}

// sweepResponse reports per-spec summaries plus the aggregate table.
type sweepResponse struct {
	Count   int           `json:"count"`
	Results []sweepResult `json:"results"`
	Table   tableJSON     `json:"table"`
	Cache   sweep.Stats   `json:"cache"`
	Wall    float64       `json:"wall_seconds"`
}

type sweepResult struct {
	Spec    sweep.Spec  `json:"spec"`
	Summary *runSummary `json:"summary"`
}

type tableJSON struct {
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding sweep: %w", err))
		return
	}
	specs := req.Specs
	if req.Grid != nil {
		specs = append(specs, req.Grid.Expand()...)
	}
	if len(specs) == 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("empty sweep: provide specs or a grid with mixes"))
		return
	}
	for _, sp := range specs {
		if err := s.eng.Validate(sp); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	}
	// The sweep runs under the request context (client disconnect
	// cancels it) bounded by the server lifetime.
	ctx, cancel := mergeDone(r.Context(), s.base)
	defer cancel()
	start := time.Now()
	res, err := s.eng.Sweep(ctx, specs, sweep.Options{Normalize: req.Normalize})
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	out := sweepResponse{Count: len(specs), Cache: s.eng.Stats(), Wall: time.Since(start).Seconds()}
	for i := range specs {
		sum := summarize(res.Results[i])
		if req.Normalize {
			sum.Normalized = res.Norms[i]
		}
		out.Results = append(out.Results, sweepResult{Spec: specs[i], Summary: sum})
	}
	tab := res.Table("sweep")
	out.Table = tableJSON{Header: tab.Header, Rows: tab.Rows}
	writeJSON(w, http.StatusOK, out)
}

// mergeDone returns a context that is cancelled when either parent is.
func mergeDone(a, b context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(a)
	stop := context.AfterFunc(b, cancel)
	return ctx, func() { stop(); cancel() }
}
