// Command tracegen runs the level-1 architectural simulator for a set of
// design points and dumps the resulting rate records (the Wi×D trace set
// of §4.3.1) to a gob file that cmd/memspot and the library can reload.
//
// Usage:
//
//	tracegen -mix W1 -out w1.traces
//	tracegen -mix W1 -freqs 3.2,2.4,1.6,0.8 -caps 19.2,12.8,6.4 -out w1.traces
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"dramtherm/internal/sim"
	"dramtherm/internal/trace"
	"dramtherm/internal/workload"
)

func parseFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	var (
		mixName = flag.String("mix", "W1", "workload mix (W1..W8, W11, W12)")
		freqs   = flag.String("freqs", "3.2,2.4,1.6,0.8", "core frequencies (GHz)")
		caps    = flag.String("caps", "19.2,12.8,6.4", "bandwidth caps (GB/s); uncapped always included")
		seed    = flag.Int64("seed", 1, "stream seed")
		out     = flag.String("out", "", "output file (required)")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	mix, err := workload.MixByName(*mixName)
	fail(err)
	fs, err := parseFloats(*freqs)
	fail(err)
	cs, err := parseFloats(*caps)
	fail(err)
	cs = append(cs, math.Inf(1))

	store := sim.NewStore(*seed)
	apps := trace.CanonApps(mix.Apps)
	n := 0
	for _, f := range fs {
		for _, c := range cs {
			dp := trace.DesignPoint{Apps: apps, FreqGHz: f, BWCapGBps: c}
			r, err := store.Get(dp)
			fail(err)
			fmt.Printf("%v: %.2f GB/s, latency %.0f ns\n", dp, r.TotalGBps(), r.MeanLatencyNS)
			n++
		}
	}
	// Core-gated subsets at top frequency (the DTM-ACG design points).
	for size := 1; size < len(mix.Apps); size++ {
		for start := 0; start < len(mix.Apps); start++ {
			var names []string
			for k := 0; k < size; k++ {
				names = append(names, mix.Apps[(start+k)%len(mix.Apps)])
			}
			dp := trace.DesignPoint{Apps: trace.CanonApps(names), FreqGHz: fs[0], BWCapGBps: math.Inf(1)}
			r, err := store.Get(dp)
			fail(err)
			fmt.Printf("%v: %.2f GB/s\n", dp, r.TotalGBps())
			n++
		}
	}

	f, err := os.Create(*out)
	fail(err)
	defer f.Close()
	fail(store.Save(f))
	fmt.Printf("wrote %d design points (%d records) to %s\n", n, store.Len(), *out)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
